// Tests for prime-field arithmetic, primality, polynomials and
// interpolation — the algebra underneath the GVSS coin.
#include <gtest/gtest.h>

#include "field/fp.h"
#include "field/poly.h"
#include "field/primes.h"
#include "support/check.h"

namespace ssbft {
namespace {

TEST(Primes, KnownSmallValues) {
  EXPECT_FALSE(is_prime_u64(0));
  EXPECT_FALSE(is_prime_u64(1));
  EXPECT_TRUE(is_prime_u64(2));
  EXPECT_TRUE(is_prime_u64(3));
  EXPECT_FALSE(is_prime_u64(4));
  EXPECT_TRUE(is_prime_u64(5));
  EXPECT_FALSE(is_prime_u64(1001));  // 7 * 11 * 13
  EXPECT_TRUE(is_prime_u64(1009));
}

TEST(Primes, CarmichaelNumbersRejected) {
  // Carmichael numbers fool Fermat tests; Miller-Rabin must not be fooled.
  for (std::uint64_t c : {561ULL, 1105ULL, 1729ULL, 2465ULL, 294409ULL}) {
    EXPECT_FALSE(is_prime_u64(c)) << c;
  }
}

TEST(Primes, LargeKnownValues) {
  EXPECT_TRUE(is_prime_u64(2305843009213693951ULL));   // 2^61 - 1 (Mersenne)
  EXPECT_FALSE(is_prime_u64(2305843009213693953ULL));  // 2^61 + 1 = 3*715827883*...
  EXPECT_TRUE(is_prime_u64(18446744073709551557ULL));  // largest 64-bit prime
}

TEST(Primes, SmallestPrimeAbove) {
  EXPECT_EQ(smallest_prime_above(0), 2u);
  EXPECT_EQ(smallest_prime_above(2), 3u);
  EXPECT_EQ(smallest_prime_above(3), 5u);
  EXPECT_EQ(smallest_prime_above(10), 11u);
  EXPECT_EQ(smallest_prime_above(13), 17u);
  EXPECT_EQ(smallest_prime_above(100), 101u);
}

TEST(Primes, SmallestPrimeAboveIsCanonicalForNodeCounts) {
  // Remark 2.3: every node must derive the same field from n alone.
  for (std::uint64_t n = 4; n < 200; ++n) {
    const std::uint64_t p = smallest_prime_above(n);
    EXPECT_GT(p, n);
    EXPECT_TRUE(is_prime_u64(p));
    for (std::uint64_t q = n + 1; q < p; ++q) EXPECT_FALSE(is_prime_u64(q));
  }
}

TEST(PrimeField, RejectsComposite) {
  EXPECT_THROW(PrimeField(10), contract_error);
  EXPECT_THROW(PrimeField(1), contract_error);
}

class FieldLawsTest : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Moduli, FieldLawsTest,
                         ::testing::Values(5ULL, 101ULL, 65537ULL,
                                           2305843009213693951ULL));

TEST_P(FieldLawsTest, RingAxiomsOnRandomElements) {
  PrimeField F(GetParam());
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    const auto a = F.uniform(rng), b = F.uniform(rng), c = F.uniform(rng);
    EXPECT_EQ(F.add(a, b), F.add(b, a));
    EXPECT_EQ(F.mul(a, b), F.mul(b, a));
    EXPECT_EQ(F.add(F.add(a, b), c), F.add(a, F.add(b, c)));
    EXPECT_EQ(F.mul(F.mul(a, b), c), F.mul(a, F.mul(b, c)));
    EXPECT_EQ(F.mul(a, F.add(b, c)), F.add(F.mul(a, b), F.mul(a, c)));
    EXPECT_EQ(F.add(a, F.neg(a)), 0u);
    EXPECT_EQ(F.sub(a, b), F.add(a, F.neg(b)));
  }
}

TEST_P(FieldLawsTest, InverseIsTotalOnNonzero) {
  PrimeField F(GetParam());
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 100; ++i) {
    const auto a = F.uniform_nonzero(rng);
    EXPECT_EQ(F.mul(a, F.inv(a)), 1u);
  }
  EXPECT_THROW(F.inv(0), contract_error);
}

TEST_P(FieldLawsTest, PowMatchesRepeatedMultiplication) {
  PrimeField F(GetParam());
  Rng rng(GetParam() + 2);
  const auto a = F.uniform(rng);
  std::uint64_t acc = 1 % F.modulus();
  for (std::uint64_t e = 0; e < 20; ++e) {
    EXPECT_EQ(F.pow(a, e), acc);
    acc = F.mul(acc, a);
  }
}

TEST_P(FieldLawsTest, FermatLittleTheorem) {
  PrimeField F(GetParam());
  Rng rng(GetParam() + 3);
  for (int i = 0; i < 20; ++i) {
    const auto a = F.uniform_nonzero(rng);
    EXPECT_EQ(F.pow(a, F.modulus() - 1), 1u);
  }
}

TEST(PrimeField, UniformStaysInRange) {
  PrimeField F(101);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(F.uniform(rng), 101u);
    EXPECT_NE(F.uniform_nonzero(rng), 0u);
  }
}

TEST(Poly, DegreeAndNormalization) {
  EXPECT_EQ(Poly().degree(), -1);
  EXPECT_EQ(Poly({0, 0, 0}).degree(), -1);  // trailing zeros drop
  EXPECT_EQ(Poly({5}).degree(), 0);
  EXPECT_EQ(Poly({1, 2, 0, 0}).degree(), 1);
}

TEST(Poly, HornerEvaluation) {
  PrimeField F(101);
  Poly p({3, 2, 1});  // 3 + 2x + x^2
  EXPECT_EQ(p.eval(F, 0), 3u);
  EXPECT_EQ(p.eval(F, 1), 6u);
  EXPECT_EQ(p.eval(F, 10), (3 + 20 + 100) % 101);
}

TEST(Poly, ArithmeticConsistentWithEvaluation) {
  PrimeField F(65537);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    Poly a = Poly::random(F, 4, rng);
    Poly b = Poly::random(F, 3, rng);
    const auto x = F.uniform(rng);
    EXPECT_EQ(a.add(F, b).eval(F, x), F.add(a.eval(F, x), b.eval(F, x)));
    EXPECT_EQ(a.sub(F, b).eval(F, x), F.sub(a.eval(F, x), b.eval(F, x)));
    EXPECT_EQ(a.mul(F, b).eval(F, x), F.mul(a.eval(F, x), b.eval(F, x)));
    EXPECT_EQ(a.scale(F, 7).eval(F, x), F.mul(a.eval(F, x), 7));
  }
}

TEST(Poly, DivmodRoundTrip) {
  PrimeField F(65537);
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    Poly a = Poly::random(F, 6, rng);
    Poly d = Poly::random(F, 2, rng);
    if (d.is_zero()) continue;
    auto [q, r] = a.divmod(F, d);
    EXPECT_LT(r.degree(), d.degree());
    EXPECT_EQ(q.mul(F, d).add(F, r), a);
  }
}

TEST(Poly, DivisionByZeroRejected) {
  PrimeField F(101);
  EXPECT_THROW(Poly({1, 2}).divmod(F, Poly()), contract_error);
}

TEST(Poly, RandomWithConstantPinsSecret) {
  PrimeField F(101);
  Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    Poly p = Poly::random_with_constant(F, 3, 42, rng);
    EXPECT_EQ(p.eval(F, 0), 42u);
    EXPECT_LE(p.degree(), 3);
  }
}

TEST(Interpolation, RecoversOriginalPolynomial) {
  PrimeField F(2305843009213693951ULL);
  Rng rng(8);
  for (int deg = 0; deg <= 6; ++deg) {
    Poly p = Poly::random(F, deg, rng);
    std::vector<std::uint64_t> xs, ys;
    for (std::uint64_t x = 1; x <= static_cast<std::uint64_t>(deg) + 1; ++x) {
      xs.push_back(x);
      ys.push_back(p.eval(F, x));
    }
    EXPECT_EQ(lagrange_interpolate(F, xs, ys), p) << "deg=" << deg;
  }
}

TEST(Interpolation, ExactDegreeBound) {
  PrimeField F(101);
  // 3 points -> degree <= 2 polynomial through them.
  Poly p = lagrange_interpolate(F, {1, 2, 3}, {10, 20, 40});
  EXPECT_LE(p.degree(), 2);
  EXPECT_EQ(p.eval(F, 1), 10u);
  EXPECT_EQ(p.eval(F, 2), 20u);
  EXPECT_EQ(p.eval(F, 3), 40u);
}

TEST(Interpolation, DuplicateNodesRejected) {
  PrimeField F(101);
  EXPECT_THROW(lagrange_interpolate(F, {1, 1}, {2, 3}), contract_error);
}

}  // namespace
}  // namespace ssbft
