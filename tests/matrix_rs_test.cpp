// Tests for linear algebra mod p and Berlekamp-Welch decoding — the
// error-correcting recovery that lets the coin survive f lying shares.
#include <gtest/gtest.h>

#include <algorithm>

#include "field/matrix.h"
#include "field/poly.h"
#include "field/reed_solomon.h"

namespace ssbft {
namespace {

TEST(Matrix, SolvesIdentitySystem) {
  PrimeField F(101);
  Matrix A(3, 3);
  for (std::size_t i = 0; i < 3; ++i) A.at(i, i) = 1;
  auto x = solve_linear(F, A, {5, 7, 9});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(*x, (std::vector<std::uint64_t>{5, 7, 9}));
}

TEST(Matrix, SolvesGeneralSystem) {
  PrimeField F(101);
  // x + y = 3; 2x + y = 5  ->  x = 2, y = 1.
  Matrix A(2, 2);
  A.at(0, 0) = 1; A.at(0, 1) = 1;
  A.at(1, 0) = 2; A.at(1, 1) = 1;
  auto x = solve_linear(F, A, {3, 5});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ((*x)[0], 2u);
  EXPECT_EQ((*x)[1], 1u);
}

TEST(Matrix, DetectsInconsistency) {
  PrimeField F(101);
  // x + y = 1; x + y = 2 is unsatisfiable.
  Matrix A(2, 2);
  A.at(0, 0) = 1; A.at(0, 1) = 1;
  A.at(1, 0) = 1; A.at(1, 1) = 1;
  EXPECT_FALSE(solve_linear(F, A, {1, 2}).has_value());
}

TEST(Matrix, UnderdeterminedPicksASolution) {
  PrimeField F(101);
  // One equation, two unknowns: x + 2y = 7; free variable set to zero.
  Matrix A(1, 2);
  A.at(0, 0) = 1; A.at(0, 1) = 2;
  auto x = solve_linear(F, A, {7});
  ASSERT_TRUE(x.has_value());
  EXPECT_EQ(F.add((*x)[0], F.mul(2, (*x)[1])), 7u);
}

TEST(Matrix, RandomSolvableSystemsVerify) {
  PrimeField F(2305843009213693951ULL);
  Rng rng(21);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.next_below(8);
    Matrix A(n, n);
    std::vector<std::uint64_t> truth(n);
    for (auto& t : truth) t = F.uniform(rng);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) A.at(i, j) = F.uniform(rng);
    }
    std::vector<std::uint64_t> b(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        b[i] = F.add(b[i], F.mul(A.at(i, j), truth[j]));
      }
    }
    Matrix A_copy = A;
    auto x = solve_linear(F, std::move(A_copy), b);
    ASSERT_TRUE(x.has_value());
    // The found solution satisfies the system (it may differ from `truth`
    // only if A is singular, in which case both satisfy it).
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t acc = 0;
      for (std::size_t j = 0; j < n; ++j) {
        acc = F.add(acc, F.mul(A.at(i, j), (*x)[j]));
      }
      EXPECT_EQ(acc, b[i]);
    }
  }
}

TEST(Matrix, RankOfStructuredMatrices) {
  PrimeField F(101);
  Matrix Z(3, 3);
  EXPECT_EQ(matrix_rank(F, Z), 0u);
  Matrix I(3, 3);
  for (std::size_t i = 0; i < 3; ++i) I.at(i, i) = 1;
  EXPECT_EQ(matrix_rank(F, I), 3u);
  Matrix R(2, 3);  // second row = 2 * first
  R.at(0, 0) = 1; R.at(0, 1) = 2; R.at(0, 2) = 3;
  R.at(1, 0) = 2; R.at(1, 1) = 4; R.at(1, 2) = 6;
  EXPECT_EQ(matrix_rank(F, R), 1u);
}

// ---- Berlekamp-Welch ------------------------------------------------------

struct BwParam {
  int degree;
  int points;
  int errors;
};

class BerlekampWelchTest : public ::testing::TestWithParam<BwParam> {};

INSTANTIATE_TEST_SUITE_P(
    Sweep, BerlekampWelchTest,
    ::testing::Values(BwParam{1, 4, 1},    // n=4, f=1 share recovery shape
                      BwParam{2, 7, 2},    // n=7, f=2
                      BwParam{3, 10, 3},   // n=10, f=3
                      BwParam{4, 13, 4},   // n=13, f=4
                      BwParam{1, 9, 3},    // slack: more points than needed
                      BwParam{5, 16, 5},
                      BwParam{0, 3, 1}));  // constant polynomial

TEST_P(BerlekampWelchTest, RecoversUnderMaximalCorruption) {
  const auto [degree, points, errors] = GetParam();
  PrimeField F(2305843009213693951ULL);
  Rng rng(static_cast<std::uint64_t>(degree * 1000 + points * 10 + errors));
  for (int trial = 0; trial < 20; ++trial) {
    Poly truth = Poly::random(F, degree, rng);
    std::vector<RsPoint> pts;
    for (int i = 0; i < points; ++i) {
      pts.push_back({static_cast<std::uint64_t>(i + 1),
                     truth.eval(F, static_cast<std::uint64_t>(i + 1))});
    }
    // Corrupt `errors` distinct points with fresh random values.
    std::vector<std::size_t> idx(pts.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (int e = 0; e < errors; ++e) {
      const std::size_t pick = e + rng.next_below(idx.size() - e);
      std::swap(idx[e], idx[pick]);
      pts[idx[e]].y = F.add(pts[idx[e]].y, F.uniform_nonzero(rng));
    }
    auto decoded = berlekamp_welch(F, pts, degree, errors);
    ASSERT_TRUE(decoded.has_value())
        << "deg=" << degree << " pts=" << points << " err=" << errors;
    EXPECT_EQ(*decoded, truth);
  }
}

TEST(BerlekampWelch, CleanPointsDecodeWithZeroErrors) {
  PrimeField F(101);
  Poly truth({7, 3, 1});
  std::vector<RsPoint> pts;
  for (std::uint64_t x = 1; x <= 6; ++x) pts.push_back({x, truth.eval(F, x)});
  auto decoded = berlekamp_welch(F, pts, 2, 2);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, truth);
}

TEST(BerlekampWelch, TooFewPointsFails) {
  PrimeField F(101);
  std::vector<RsPoint> pts = {{1, 5}, {2, 7}};
  EXPECT_FALSE(berlekamp_welch(F, pts, 2, 0).has_value());
}

TEST(BerlekampWelch, BeyondBudgetCorruptionIsNotSilentlyWrong) {
  // With errors above the correctable bound the decoder may fail, but if
  // it returns a polynomial it must disagree with at most max_errors
  // points (i.e. it never fabricates an inconsistent answer).
  PrimeField F(2305843009213693951ULL);
  Rng rng(99);
  Poly truth = Poly::random(F, 2, rng);
  std::vector<RsPoint> pts;
  for (std::uint64_t x = 1; x <= 7; ++x) pts.push_back({x, truth.eval(F, x)});
  for (int i = 0; i < 4; ++i) pts[static_cast<std::size_t>(i)].y = F.uniform(rng);
  auto decoded = berlekamp_welch(F, pts, 2, 2);
  if (decoded.has_value()) {
    EXPECT_LE(count_disagreements(F, *decoded, pts), 2);
  }
}

TEST(BerlekampWelch, CountDisagreements) {
  PrimeField F(101);
  Poly p({1, 1});  // 1 + x
  std::vector<RsPoint> pts = {{1, 2}, {2, 3}, {3, 5}};
  EXPECT_EQ(count_disagreements(F, p, pts), 1);
}

}  // namespace
}  // namespace ssbft
