// Adversary gallery: the same 2-Clock system under every attack strategy
// this library implements, showing convergence holding at f < n/3
// regardless of the adversary's sophistication — including one that reads
// the coin (rushing) before choosing its votes.
//
//   $ ./byzantine_gallery [trials]
#include <iostream>
#include <string>

#include "adversary/adversaries.h"
#include "coin/oracle_coin.h"
#include "core/clock2.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace ssbft;

namespace {

EngineBundle build(std::uint32_t n, std::uint32_t f, int attack,
                   std::uint64_t seed) {
  EngineBundle b;
  auto beacon = std::make_shared<OracleBeacon>(n, OracleCoinParams{0.45, 0.45},
                                               Rng(seed).split("beacon"));
  CoinSpec spec = oracle_coin_spec(beacon);
  EngineConfig cfg;
  cfg.n = n;
  cfg.f = f;
  cfg.faulty = EngineConfig::last_ids_faulty(n, f);
  cfg.seed = seed;
  std::unique_ptr<Adversary> adv;
  switch (attack) {
    case 0: adv = make_silent_adversary(); break;
    case 1: adv = make_random_noise_adversary(10, 48); break;
    case 2: {
      ByteWriter x, y;
      x.u8(0);
      y.u8(1);
      adv = make_split_value_adversary(0, std::move(x).take(),
                                       std::move(y).take());
      break;
    }
    default: adv = make_anti_coin_adversary(beacon, 0); break;
  }
  auto factory = [spec](const ProtocolEnv& env, Rng rng) {
    return std::make_unique<SsByz2Clock>(env, spec, 0, rng);
  };
  b.engine = std::make_unique<Engine>(cfg, factory, std::move(adv));
  b.engine->add_listener(beacon.get());
  b.keepalive = beacon;
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t trials =
      argc > 1 ? std::stoull(argv[1]) : 40;
  const char* names[] = {
      "silent (crash)", "random noise", "split-world equivocation",
      "anti-coin rusher (reads the coin first)"};

  std::cout << "ss-Byz-2-Clock, n=7, f=2, " << trials
            << " trials per adversary, randomized genesis\n\n";
  AsciiTable t({"adversary", "converged", "mean beats", "median", "p90"});
  for (int attack = 0; attack < 4; ++attack) {
    RunnerConfig rc;
    rc.trials = trials;
    rc.base_seed = 11;
    rc.convergence.max_beats = 5000;
    auto stats = run_trials(
        [attack](std::uint64_t seed) { return build(7, 2, attack, seed); },
        rc);
    t.add_row({names[attack],
               std::to_string(stats.converged) + "/" + std::to_string(trials),
               fmt_double(stats.mean, 1), fmt_double(stats.median, 1),
               fmt_double(stats.p90, 1)});
  }
  t.print(std::cout);
  std::cout
      << "\nnote the anti-coin rusher: it sees each beat's coin before\n"
         "sending (the model allows rushing), yet cannot slow convergence\n"
         "much — the gamble's value was fixed one beat earlier (Remark 3.1/"
         "Lemma 4).\n";
  return 0;
}
