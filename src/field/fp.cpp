#include "field/fp.h"

#include "field/fp_simd.h"
#include "field/primes.h"

namespace ssbft {

namespace {

// Unchecked generic modmul for the batch kernels (inputs pre-validated).
inline std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b,
                             std::uint64_t p) {
  return static_cast<std::uint64_t>(static_cast<unsigned __int128>(a) * b % p);
}

inline std::uint64_t mul_m61(std::uint64_t a, std::uint64_t b) {
  return PrimeField::fold61(static_cast<unsigned __int128>(a) * b);
}

inline std::uint64_t add_mod(std::uint64_t a, std::uint64_t b,
                             std::uint64_t p) {
  std::uint64_t s = a + b;
  if (s < a || s >= p) s -= p;
  return s;
}

inline std::uint64_t sub_mod(std::uint64_t a, std::uint64_t b,
                             std::uint64_t p) {
  return a >= b ? a - b : a + (p - b);
}

}  // namespace

PrimeField::PrimeField(std::uint64_t p, SimdMode simd)
    : p_(p),
      mersenne61_(p == kDefaultPrime),
      // The one dispatch decision (see the design note in fp.h): vector
      // kernels serve only the Mersenne-61 path, only when compiled in and
      // supported by this CPU, and only when the caller didn't pin kOff.
      simd_(p == kDefaultPrime && simd == SimdMode::kAuto &&
            m61simd::available()) {
  SSBFT_REQUIRE_MSG(p >= 2 && is_prime_u64(p), "field modulus must be prime, got " << p);
}

std::uint64_t PrimeField::pow(std::uint64_t a, std::uint64_t e) const {
  SSBFT_CHECK(a < p_);
  std::uint64_t base = a, acc = 1 % p_;
  while (e != 0) {
    if (e & 1) acc = mul(acc, base);
    base = mul(base, base);
    e >>= 1;
  }
  return acc;
}

std::uint64_t PrimeField::inv(std::uint64_t a) const {
  SSBFT_REQUIRE_MSG(a != 0 && a < p_, "inverse of zero / non-canonical value");
  // Extended Euclid: ~60 division steps beat the ~61 modmuls of Fermat by a
  // wide margin (each step is one 64-bit divide vs a 128-bit modmul), and
  // it is total on nonzero a because p is prime. Bezout coefficients can
  // exceed int64 range only for p >= 2^63, so track them in 128 bits.
  std::uint64_t r0 = p_, r1 = a;
  __int128 t0 = 0, t1 = 1;
  while (r1 != 0) {
    const std::uint64_t q = r0 / r1;
    const std::uint64_t r2 = r0 - q * r1;
    const __int128 t2 = t0 - static_cast<__int128>(q) * t1;
    r0 = r1;
    r1 = r2;
    t0 = t1;
    t1 = t2;
  }
  SSBFT_CHECK(r0 == 1);  // gcd(a, p) = 1 since p is prime and 0 < a < p
  if (t0 < 0) t0 += static_cast<__int128>(p_);
  return static_cast<std::uint64_t>(t0);
}

void PrimeField::mul_vec(const std::uint64_t* a, const std::uint64_t* b,
                         std::uint64_t* out, std::size_t len) const {
  if (simd_) {
    m61simd::mul_vec(a, b, out, len);
  } else if (mersenne61_) {
    for (std::size_t i = 0; i < len; ++i) out[i] = mul_m61(a[i], b[i]);
  } else {
    for (std::size_t i = 0; i < len; ++i) out[i] = mul_mod(a[i], b[i], p_);
  }
}

void PrimeField::scale_vec(const std::uint64_t* a, std::uint64_t c,
                           std::uint64_t* out, std::size_t len) const {
  SSBFT_CHECK(c < p_);
  if (simd_) {
    m61simd::scale_vec(a, c, out, len);
  } else if (mersenne61_) {
    for (std::size_t i = 0; i < len; ++i) out[i] = mul_m61(a[i], c);
  } else {
    for (std::size_t i = 0; i < len; ++i) out[i] = mul_mod(a[i], c, p_);
  }
}

void PrimeField::submul_vec(std::uint64_t* dst, const std::uint64_t* src,
                            std::uint64_t c, std::size_t len) const {
  SSBFT_CHECK(c < p_);
  if (simd_) {
    m61simd::submul_vec(dst, src, c, len);
  } else if (mersenne61_) {
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] = sub_mod(dst[i], mul_m61(src[i], c), kDefaultPrime);
    }
  } else {
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] = sub_mod(dst[i], mul_mod(src[i], c, p_), p_);
    }
  }
}

void PrimeField::addmul_vec(std::uint64_t* dst, const std::uint64_t* src,
                            std::uint64_t c, std::size_t len) const {
  SSBFT_CHECK(c < p_);
  if (simd_) {
    m61simd::addmul_vec(dst, src, c, len);
  } else if (mersenne61_) {
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] = add_mod(dst[i], mul_m61(src[i], c), kDefaultPrime);
    }
  } else {
    for (std::size_t i = 0; i < len; ++i) {
      dst[i] = add_mod(dst[i], mul_mod(src[i], c, p_), p_);
    }
  }
}

std::uint64_t PrimeField::dot(const std::uint64_t* a, const std::uint64_t* b,
                              std::size_t len) const {
  if (simd_) return m61simd::dot(a, b, len);
  std::uint64_t acc = 0;
  if (mersenne61_) {
    for (std::size_t i = 0; i < len; ++i) {
      acc = add_mod(acc, mul_m61(a[i], b[i]), kDefaultPrime);
    }
  } else {
    for (std::size_t i = 0; i < len; ++i) {
      acc = add_mod(acc, mul_mod(a[i], b[i], p_), p_);
    }
  }
  return acc;
}

std::uint64_t PrimeField::horner(const std::uint64_t* coeffs,
                                 std::size_t count, std::uint64_t x) const {
  SSBFT_CHECK(x < p_);
  std::uint64_t acc = 0;
  if (mersenne61_) {
    for (std::size_t i = count; i-- > 0;) {
      acc = add_mod(mul_m61(acc, x), coeffs[i], kDefaultPrime);
    }
  } else {
    for (std::size_t i = count; i-- > 0;) {
      acc = add_mod(mul_mod(acc, x, p_), coeffs[i], p_);
    }
  }
  return acc;
}

void PrimeField::eval_many(const std::uint64_t* coeffs, std::size_t count,
                           const std::uint64_t* xs, std::size_t m,
                           std::uint64_t* out) const {
  if (simd_) {
    m61simd::eval_many(coeffs, count, xs, m, out);
  } else if (mersenne61_) {
    for (std::size_t k = 0; k < m; ++k) {
      const std::uint64_t x = xs[k];
      std::uint64_t acc = 0;
      for (std::size_t i = count; i-- > 0;) {
        acc = add_mod(mul_m61(acc, x), coeffs[i], kDefaultPrime);
      }
      out[k] = acc;
    }
  } else {
    for (std::size_t k = 0; k < m; ++k) {
      const std::uint64_t x = xs[k];
      std::uint64_t acc = 0;
      for (std::size_t i = count; i-- > 0;) {
        acc = add_mod(mul_mod(acc, x, p_), coeffs[i], p_);
      }
      out[k] = acc;
    }
  }
}

void PrimeField::batch_inv(std::uint64_t* vals, std::size_t len,
                           std::uint64_t* scratch) const {
  if (len == 0) return;
  // The serial prefix-product chain is latency-bound; at vector-worthy
  // lengths the Mersenne path runs it as four independent lanes. Outputs
  // are the exact inverses either way (inverses are unique), so the two
  // shapes are bit-identical.
  if (simd_ && len >= 32) {
    batch_inv_m61_lanes(vals, len, scratch);
    return;
  }
  // Prefix products, one inversion of the total, then unwind: each step
  // peels one factor off the running inverse.
  scratch[0] = vals[0];
  for (std::size_t i = 1; i < len; ++i) {
    scratch[i] = mul(scratch[i - 1], vals[i]);
  }
  std::uint64_t run = inv(scratch[len - 1]);
  for (std::size_t i = len; i-- > 1;) {
    const std::uint64_t v = vals[i];
    vals[i] = mul(run, scratch[i - 1]);
    run = mul(run, v);
  }
  vals[0] = run;
}

void PrimeField::batch_inv_m61_lanes(std::uint64_t* vals, std::size_t len,
                                     std::uint64_t* scratch) const {
  // Four contiguous chunks of K elements run their prefix products in
  // lanes; the tail (len % 4 elements) chains on scalar, seeded with the
  // product of all chunk totals so one inv() still covers everything.
  const std::size_t K = len / 4;
  const std::size_t body = 4 * K;
  m61simd::chunk_prefix(vals, scratch, K);
  const std::uint64_t T[4] = {scratch[K - 1], scratch[2 * K - 1],
                              scratch[3 * K - 1], scratch[4 * K - 1]};
  const std::uint64_t G = mul(mul(T[0], T[1]), mul(T[2], T[3]));
  std::uint64_t p = G;
  for (std::size_t i = body; i < len; ++i) scratch[i] = p = mul(p, vals[i]);
  std::uint64_t run = inv(p);
  for (std::size_t i = len; i-- > body;) {
    const std::uint64_t v = vals[i];
    // The global prefix before index body is G, not scratch[body - 1]
    // (which holds chunk 3's total).
    vals[i] = mul(run, i == body ? G : scratch[i - 1]);
    run = mul(run, v);
  }
  // run == G^-1 now; per-chunk inverse totals via prefix/suffix products
  // of the four chunk totals.
  const std::uint64_t U2 = mul(T[0], T[1]);
  const std::uint64_t V1 = mul(T[3], T[2]);
  const std::uint64_t inv_totals[4] = {
      mul(run, mul(V1, T[1])),  // G^-1 * T1*T2*T3
      mul(run, mul(T[0], V1)),  // G^-1 * T0*T2*T3
      mul(run, mul(U2, T[3])),  // G^-1 * T0*T1*T3
      mul(run, mul(U2, T[2])),  // G^-1 * T0*T1*T2
  };
  m61simd::chunk_unwind(vals, scratch, inv_totals, K);
}

std::uint64_t PrimeField::uniform(Rng& rng) const { return rng.next_below(p_); }

std::uint64_t PrimeField::uniform_nonzero(Rng& rng) const {
  return 1 + rng.next_below(p_ - 1);
}

}  // namespace ssbft
