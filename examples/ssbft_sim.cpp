// ssbft_sim — the command-line experiment driver.
//
// Runs any algorithm in the library against any adversary, over many
// seeded trials, and prints a convergence/traffic summary (or CSV). This
// is the tool a downstream user reaches for to answer "what does algorithm
// X do at (n, f, k) under attack Y?" without writing C++.
//
//   ssbft_sim --algo clocksync --n 7 --f 2 --k 60 --adversary skew
//             --coin fm --trials 25 --max-beats 8000 [--csv]
//
//   --algo      clocksync | clock2 | clock4 | cascade | king | queen |
//               dw | dw-shared
//   --coin      oracle | fm | local        (coin-consuming algorithms)
//   --adversary silent | noise | split | skew | adaptive | coinattack
//   --levels    cascade tower height (cascade only; k = 2^levels)
//   --p0/--p1   oracle coin common-event probabilities
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "adversary/adversaries.h"
#include "agreement/phase_king.h"
#include "agreement/phase_queen.h"
#include "agreement/turpin_coan.h"
#include "baselines/dolev_welch.h"
#include "baselines/pipelined_ba_clock.h"
#include "coin/fm_coin.h"
#include "coin/local_coin.h"
#include "coin/oracle_coin.h"
#include "core/cascade.h"
#include "core/clock2.h"
#include "core/clock4.h"
#include "core/clock_sync.h"
#include "harness/runner.h"
#include "harness/table.h"

using namespace ssbft;

namespace {

struct Options {
  std::string algo = "clocksync";
  std::string coin = "oracle";
  std::string adversary = "skew";
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  ClockValue k = 16;
  std::uint32_t levels = 3;
  double p0 = 0.45, p1 = 0.45;
  std::uint64_t trials = 20;
  std::uint64_t seed = 1;
  std::uint64_t max_beats = 10000;
  bool csv = false;
};

[[noreturn]] void usage(const char* msg) {
  std::cerr << "error: " << msg << "\n"
            << "usage: ssbft_sim [--algo A] [--coin C] [--adversary X] "
               "[--n N] [--f F] [--k K]\n"
            << "                 [--levels L] [--p0 P] [--p1 P] [--trials T] "
               "[--seed S]\n"
            << "                 [--max-beats B] [--csv]\n";
  std::exit(2);
}

Options parse(int argc, char** argv) {
  Options o;
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage("missing value");
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--algo") o.algo = need(i);
    else if (a == "--coin") o.coin = need(i);
    else if (a == "--adversary") o.adversary = need(i);
    else if (a == "--n") o.n = static_cast<std::uint32_t>(std::stoul(need(i)));
    else if (a == "--f") o.f = static_cast<std::uint32_t>(std::stoul(need(i)));
    else if (a == "--k") o.k = std::stoull(need(i));
    else if (a == "--levels") o.levels = static_cast<std::uint32_t>(std::stoul(need(i)));
    else if (a == "--p0") o.p0 = std::stod(need(i));
    else if (a == "--p1") o.p1 = std::stod(need(i));
    else if (a == "--trials") o.trials = std::stoull(need(i));
    else if (a == "--seed") o.seed = std::stoull(need(i));
    else if (a == "--max-beats") o.max_beats = std::stoull(need(i));
    else if (a == "--csv") o.csv = true;
    else if (a == "--help" || a == "-h") usage("(help)");
    else usage(("unknown flag " + a).c_str());
  }
  return o;
}

EngineBundle build(const Options& o, std::uint64_t seed) {
  EngineBundle b;
  EngineConfig cfg;
  cfg.n = o.n;
  cfg.f = o.f;
  cfg.faulty = EngineConfig::last_ids_faulty(o.n, o.f);
  cfg.seed = seed;

  std::shared_ptr<OracleBeacon> beacon;
  CoinSpec spec;
  if (o.coin == "oracle") {
    beacon = std::make_shared<OracleBeacon>(
        o.n, OracleCoinParams{o.p0, o.p1}, Rng(seed).split("beacon"));
    spec = oracle_coin_spec(beacon);
  } else if (o.coin == "fm") {
    spec = fm_coin_spec();
  } else if (o.coin == "local") {
    spec = local_coin_spec();
  } else {
    usage("bad --coin");
  }

  ProtocolFactory factory;
  ClockValue k = o.k;
  if (o.algo == "clocksync") {
    factory = [spec, k](const ProtocolEnv& env, Rng rng) -> std::unique_ptr<Protocol> {
      return std::make_unique<SsByzClockSync>(env, k, spec, rng);
    };
  } else if (o.algo == "clock2") {
    k = 2;
    factory = [spec](const ProtocolEnv& env, Rng rng) -> std::unique_ptr<Protocol> {
      return std::make_unique<SsByz2Clock>(env, spec, 0, rng);
    };
  } else if (o.algo == "clock4") {
    k = 4;
    factory = [spec](const ProtocolEnv& env, Rng rng) -> std::unique_ptr<Protocol> {
      return std::make_unique<SsByz4Clock>(env, spec, 0, rng);
    };
  } else if (o.algo == "cascade") {
    k = ClockValue{1} << o.levels;
    factory = [spec, levels = o.levels](const ProtocolEnv& env,
                                        Rng rng) -> std::unique_ptr<Protocol> {
      return std::make_unique<CascadeClock>(env, levels, spec, rng);
    };
  } else if (o.algo == "king" || o.algo == "queen") {
    const BaSpec ba = turpin_coan_spec(
        o.algo == "king" ? phase_king_spec() : phase_queen_spec());
    factory = [ba, k](const ProtocolEnv& env, Rng rng) -> std::unique_ptr<Protocol> {
      return std::make_unique<PipelinedBaClock>(env, k, ba, rng);
    };
  } else if (o.algo == "dw") {
    factory = [k](const ProtocolEnv& env, Rng rng) -> std::unique_ptr<Protocol> {
      return std::make_unique<DolevWelchClock>(env, k, rng);
    };
  } else if (o.algo == "dw-shared") {
    factory = [spec, k](const ProtocolEnv& env, Rng rng) -> std::unique_ptr<Protocol> {
      return std::make_unique<DolevWelchSharedCoin>(env, k, spec, rng);
    };
  } else {
    usage("bad --algo");
  }

  std::unique_ptr<Adversary> adv;
  if (o.f > 0) {
    if (o.adversary == "silent") adv = make_silent_adversary();
    else if (o.adversary == "noise") adv = make_random_noise_adversary(8, 48);
    else if (o.adversary == "split") {
      ByteWriter x, y;
      x.u8(0);
      y.u8(1);
      adv = make_split_value_adversary(0, std::move(x).take(),
                                       std::move(y).take());
    } else if (o.adversary == "skew") {
      adv = make_clock_skew_adversary(k, 0);
    } else if (o.adversary == "adaptive") {
      adv = make_adaptive_quorum_splitter(k, 0);
    } else if (o.adversary == "coinattack") {
      adv = make_fm_coin_attacker(PrimeField::kDefaultPrime, 0);
    } else {
      usage("bad --adversary");
    }
  }

  b.engine = std::make_unique<Engine>(cfg, factory, std::move(adv));
  if (beacon) {
    b.engine->add_listener(beacon.get());
    b.keepalive = beacon;
  }
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  if (o.f > 0 && o.n <= 3 * o.f &&
      (o.algo != "queen") /* queen fails earlier anyway */) {
    std::cerr << "warning: n <= 3f — expect non-convergence (that may be "
                 "the experiment)\n";
  }

  RunnerConfig rc;
  rc.trials = o.trials;
  rc.base_seed = o.seed;
  rc.convergence.max_beats = o.max_beats;
  const auto stats = run_trials(
      [&](std::uint64_t seed) { return build(o, seed); }, rc);

  AsciiTable t({"algo", "coin", "adversary", "n", "f", "k", "trials",
                "converged", "mean", "median", "p90", "max", "msgs/beat"});
  t.add_row({o.algo, o.coin, o.adversary, std::to_string(o.n),
             std::to_string(o.f), std::to_string(o.k),
             std::to_string(stats.trials), std::to_string(stats.converged),
             fmt_double(stats.mean, 2), fmt_double(stats.median, 1),
             fmt_double(stats.p90, 1), std::to_string(stats.max),
             fmt_double(stats.mean_msgs_per_beat, 1)});
  if (o.csv) {
    t.print_csv(std::cout);
  } else {
    t.print(std::cout);
    if (stats.converged < stats.trials) {
      std::cout << (stats.trials - stats.converged)
                << " trial(s) censored at --max-beats " << o.max_beats
                << " (excluded from the statistics above)\n";
    }
  }
  return 0;
}
