// Bulk bit-packing kernels for 61-bit values.
//
// The masked wire codec (support/bytes.h) packs canonical Mersenne-61
// field elements at 61 bits each. Eight such values occupy exactly
// 61 bytes (8 * 61 = 488 bits), so the stream stays byte-aligned at every
// 8-value boundary and full blocks can be assembled with straight 64-bit
// word shifts — no 128-bit accumulator window. The kernels here produce /
// consume exactly the same bit layout as the scalar window in bytes.cpp
// (LSB-first, value k at bit offset 61*k), so the wire bytes are identical
// byte for byte; support_test pins this.
//
// Dispatch mirrors the field kernels (see field/fp.h): an AVX2 variant is
// selected once via a cached CPUID probe, the portable variant is the
// always-available fallback, and -DSSBFT_SIMD=off removes the block path
// from the codec entirely (bytes.cpp then runs the reference window).
#pragma once

#include <cstddef>
#include <cstdint>

namespace ssbft {
namespace bitpack61 {

constexpr unsigned kValueBits = 61;
constexpr std::size_t kBlockValues = 8;
constexpr std::size_t kBlockBytes = 61;  // 8 * 61 bits, byte-aligned

// True iff the AVX2 variant is compiled in and this CPU supports it
// (cached; the portable variant is used otherwise).
bool simd_available();

// Packs v[0..8) (each < 2^61) into exactly 61 bytes at out, LSB-first.
void pack_block(const std::uint64_t* v, std::uint8_t* out);

// Unpacks 61 bytes at in into v[0..8), masking each value to 61 bits.
void unpack_block(const std::uint8_t* in, std::uint64_t* v);

// Portable reference variants (exposed so tests can cross-check the
// dispatched kernels on AVX2 machines).
void pack_block_portable(const std::uint64_t* v, std::uint8_t* out);
void unpack_block_portable(const std::uint8_t* in, std::uint64_t* v);

}  // namespace bitpack61
}  // namespace ssbft
