// Thin wrapper over the experiment registry: `bench_ablation_pipeline` is exactly
// `ssbft_bench run ablation_pipeline` (same CLI, same byte-identical default
// output). The experiment body lives in experiments.cpp; the scenario
// cells it runs are registered in src/harness/scenario.cpp.
#include "experiments.h"

int main(int argc, char** argv) {
  return ssbft::bench::bench_main("ablation_pipeline", argc, argv);
}
